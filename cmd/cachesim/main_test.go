package main

import (
	"testing"

	"repro"
)

func TestBuildConfigStrategies(t *testing.T) {
	for name, want := range map[string]repro.StrategySpec{
		"nearest":     {Kind: repro.Nearest},
		"two-choices": {Kind: repro.TwoChoices, Radius: 5, Choices: 2},
		"two":         {Kind: repro.TwoChoices, Radius: 5, Choices: 2},
		"one-choice":  {Kind: repro.OneChoiceRandom, Radius: 5},
		"one":         {Kind: repro.OneChoiceRandom, Radius: 5},
		"oracle":      {Kind: repro.Oracle, Radius: 5},
	} {
		cfg, err := buildConfig(10, "torus", 50, 2, 0, name, 5, 2, 0, "resample", "scalar", "interleaved", "none", 1)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if cfg.Strategy != want {
			t.Errorf("%s: spec %+v, want %+v", name, cfg.Strategy, want)
		}
	}
}

func TestBuildConfigErrors(t *testing.T) {
	if _, err := buildConfig(10, "torus", 50, 2, 0, "bogus", 5, 2, 0, "resample", "scalar", "interleaved", "none", 1); err == nil {
		t.Error("bogus strategy accepted")
	}
	if _, err := buildConfig(10, "torus", 50, 2, 0, "nearest", 5, 2, 0, "bogus", "scalar", "interleaved", "none", 1); err == nil {
		t.Error("bogus miss policy accepted")
	}
	if _, err := buildConfig(10, "moebius", 50, 2, 0, "nearest", 5, 2, 0, "resample", "scalar", "interleaved", "none", 1); err == nil {
		t.Error("bogus topology accepted")
	}
}

func TestBuildConfigPopularityAndMiss(t *testing.T) {
	cfg, err := buildConfig(10, "grid", 50, 2, 1.5, "nearest", -1, 2, 33, "origin", "streaming", "split", "none", 9)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Popularity.Kind != repro.PopZipf || cfg.Popularity.Gamma != 1.5 {
		t.Errorf("popularity %+v", cfg.Popularity)
	}
	if cfg.MissPolicy != repro.MissOrigin || cfg.Requests != 33 || cfg.Seed != 9 {
		t.Errorf("cfg %+v", cfg)
	}
	// The produced config must actually run.
	if _, err := repro.RunTrial(cfg, 0); err != nil {
		t.Fatalf("built config does not run: %v", err)
	}
	for _, miss := range []string{"resample", "escalate"} {
		if _, err := buildConfig(10, "torus", 50, 2, 0, "nearest", -1, 2, 0, miss, "scalar", "interleaved", "none", 1); err != nil {
			t.Errorf("miss %s rejected: %v", miss, err)
		}
	}
}

func TestBuildConfigMetricsAndStreams(t *testing.T) {
	cfg, err := buildConfig(10, "torus", 50, 2, 0, "two-choices", 4, 2, 0, "resample", "streaming", "split", "tiles", 1)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Metrics != repro.MetricsStreaming || cfg.Streams != repro.StreamsSplit || cfg.Index != repro.IndexTiles {
		t.Errorf("metrics/streams/index = %v/%v/%v, want streaming/split/tiles", cfg.Metrics, cfg.Streams, cfg.Index)
	}
	if _, err := buildConfig(10, "torus", 50, 2, 0, "nearest", -1, 2, 0, "resample", "scalar", "interleaved", "bogus", 1); err == nil {
		t.Error("bogus index mode accepted")
	}
	if _, err := buildConfig(10, "torus", 50, 2, 0, "nearest", -1, 2, 0, "resample", "bogus", "interleaved", "none", 1); err == nil {
		t.Error("bogus metrics mode accepted")
	}
	if _, err := buildConfig(10, "torus", 50, 2, 0, "nearest", -1, 2, 0, "resample", "scalar", "bogus", "none", 1); err == nil {
		t.Error("bogus streams discipline accepted")
	}
	// The streaming config must actually run and report the extras.
	res, err := repro.RunTrial(cfg, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.HopMax == 0 || res.LoadP99 == 0 {
		t.Errorf("streaming extras missing: %+v", res)
	}
}
