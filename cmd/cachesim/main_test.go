package main

import (
	"testing"

	"repro"
)

func TestBuildConfigStrategies(t *testing.T) {
	for name, want := range map[string]repro.StrategySpec{
		"nearest":     {Kind: repro.Nearest},
		"two-choices": {Kind: repro.TwoChoices, Radius: 5, Choices: 2},
		"two":         {Kind: repro.TwoChoices, Radius: 5, Choices: 2},
		"one-choice":  {Kind: repro.OneChoiceRandom, Radius: 5},
		"one":         {Kind: repro.OneChoiceRandom, Radius: 5},
		"oracle":      {Kind: repro.Oracle, Radius: 5},
	} {
		cfg, err := buildConfig(10, "torus", 50, 2, 0, name, 5, 2, 0, "resample", "scalar", "interleaved", "none", "none", 0, "none", 0, 0, "none", "uniform", 0, 0, "deterministic", 0, 1)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if cfg.Strategy != want {
			t.Errorf("%s: spec %+v, want %+v", name, cfg.Strategy, want)
		}
	}
}

func TestBuildConfigErrors(t *testing.T) {
	if _, err := buildConfig(10, "torus", 50, 2, 0, "bogus", 5, 2, 0, "resample", "scalar", "interleaved", "none", "none", 0, "none", 0, 0, "none", "uniform", 0, 0, "deterministic", 0, 1); err == nil {
		t.Error("bogus strategy accepted")
	}
	if _, err := buildConfig(10, "torus", 50, 2, 0, "nearest", 5, 2, 0, "bogus", "scalar", "interleaved", "none", "none", 0, "none", 0, 0, "none", "uniform", 0, 0, "deterministic", 0, 1); err == nil {
		t.Error("bogus miss policy accepted")
	}
	if _, err := buildConfig(10, "moebius", 50, 2, 0, "nearest", 5, 2, 0, "resample", "scalar", "interleaved", "none", "none", 0, "none", 0, 0, "none", "uniform", 0, 0, "deterministic", 0, 1); err == nil {
		t.Error("bogus topology accepted")
	}
}

func TestBuildConfigPopularityAndMiss(t *testing.T) {
	cfg, err := buildConfig(10, "grid", 50, 2, 1.5, "nearest", -1, 2, 33, "origin", "streaming", "split", "none", "none", 0, "none", 0, 0, "none", "uniform", 0, 0, "deterministic", 0, 9)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Popularity.Kind != repro.PopZipf || cfg.Popularity.Gamma != 1.5 {
		t.Errorf("popularity %+v", cfg.Popularity)
	}
	if cfg.MissPolicy != repro.MissOrigin || cfg.Requests != 33 || cfg.Seed != 9 {
		t.Errorf("cfg %+v", cfg)
	}
	// The produced config must actually run.
	if _, err := repro.RunTrial(cfg, 0); err != nil {
		t.Fatalf("built config does not run: %v", err)
	}
	for _, miss := range []string{"resample", "escalate"} {
		if _, err := buildConfig(10, "torus", 50, 2, 0, "nearest", -1, 2, 0, miss, "scalar", "interleaved", "none", "none", 0, "none", 0, 0, "none", "uniform", 0, 0, "deterministic", 0, 1); err != nil {
			t.Errorf("miss %s rejected: %v", miss, err)
		}
	}
}

func TestBuildConfigMetricsAndStreams(t *testing.T) {
	cfg, err := buildConfig(10, "torus", 50, 2, 0, "two-choices", 4, 2, 0, "resample", "streaming", "split", "tiles", "none", 0, "none", 0, 0, "none", "uniform", 0, 0, "deterministic", 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Metrics != repro.MetricsStreaming || cfg.Streams != repro.StreamsSplit || cfg.Index != repro.IndexTiles {
		t.Errorf("metrics/streams/index = %v/%v/%v, want streaming/split/tiles", cfg.Metrics, cfg.Streams, cfg.Index)
	}
	if _, err := buildConfig(10, "torus", 50, 2, 0, "nearest", -1, 2, 0, "resample", "scalar", "interleaved", "bogus", "none", 0, "none", 0, 0, "none", "uniform", 0, 0, "deterministic", 0, 1); err == nil {
		t.Error("bogus index mode accepted")
	}
	if _, err := buildConfig(10, "torus", 50, 2, 0, "nearest", -1, 2, 0, "resample", "bogus", "interleaved", "none", "none", 0, "none", 0, 0, "none", "uniform", 0, 0, "deterministic", 0, 1); err == nil {
		t.Error("bogus metrics mode accepted")
	}
	if _, err := buildConfig(10, "torus", 50, 2, 0, "nearest", -1, 2, 0, "resample", "scalar", "bogus", "none", "none", 0, "none", 0, 0, "none", "uniform", 0, 0, "deterministic", 0, 1); err == nil {
		t.Error("bogus streams discipline accepted")
	}
	// The streaming config must actually run and report the extras.
	res, err := repro.RunTrial(cfg, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.HopMax == 0 || res.LoadP99 == 0 {
		t.Errorf("streaming extras missing: %+v", res)
	}
}

func TestBuildConfigChurn(t *testing.T) {
	cfg, err := buildConfig(10, "torus", 50, 2, 0, "two-choices", 4, 2, 0, "resample", "scalar", "interleaved", "tiles", "replicas", 0.5, "none", 0, 0, "none", "uniform", 0, 0, "deterministic", 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Churn != repro.ChurnReplicas || cfg.ChurnRate != 0.5 {
		t.Errorf("churn = %v rate %v, want replicas/0.5", cfg.Churn, cfg.ChurnRate)
	}
	if _, err := buildConfig(10, "torus", 50, 2, 0, "nearest", -1, 2, 0, "resample", "scalar", "interleaved", "none", "bogus", 0.5, "none", 0, 0, "none", "uniform", 0, 0, "deterministic", 0, 1); err == nil {
		t.Error("bogus churn mode accepted")
	}
	// A churn mode without a rate must be rejected at run time.
	bad, err := buildConfig(10, "torus", 50, 2, 0, "nearest", -1, 2, 0, "resample", "scalar", "interleaved", "none", "drift", 0, "none", 0, 0, "none", "uniform", 0, 0, "deterministic", 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := repro.RunTrial(bad, 0); err == nil {
		t.Error("churn without rate ran")
	}
	// The churn config must actually run and report event counters.
	cfg.Requests = 3000
	res, err := repro.RunTrial(cfg, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.ChurnEvents == 0 {
		t.Errorf("no churn events: %+v", res)
	}
}

func TestBuildConfigFaults(t *testing.T) {
	cfg, err := buildConfig(10, "torus", 50, 2, 0, "two-choices", 4, 2, 0, "escalate", "scalar", "interleaved", "tiles", "none", 0, "crash", 0.05, 0.02, "none", "uniform", 0, 0, "deterministic", 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Faults != repro.FaultsCrash || cfg.FaultRate != 0.05 || cfg.RecoverRate != 0.02 {
		t.Errorf("faults = %v rates %v/%v, want crash/0.05/0.02", cfg.Faults, cfg.FaultRate, cfg.RecoverRate)
	}
	if _, err := buildConfig(10, "torus", 50, 2, 0, "nearest", -1, 2, 0, "escalate", "scalar", "interleaved", "none", "none", 0, "bogus", 0.05, 0, "none", "uniform", 0, 0, "deterministic", 0, 1); err == nil {
		t.Error("bogus faults mode accepted")
	}
	// A fault mode without a rate must be rejected at run time.
	bad, err := buildConfig(10, "torus", 50, 2, 0, "nearest", -1, 2, 0, "escalate", "scalar", "interleaved", "none", "none", 0, "regional", 0, 0, "none", "uniform", 0, 0, "deterministic", 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := repro.RunTrial(bad, 0); err == nil {
		t.Error("faults without rate ran")
	}
	// So must faults under the resampling miss policy.
	bad, err = buildConfig(10, "torus", 50, 2, 0, "nearest", -1, 2, 0, "resample", "scalar", "interleaved", "none", "none", 0, "crash", 0.05, 0, "none", "uniform", 0, 0, "deterministic", 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := repro.RunTrial(bad, 0); err == nil {
		t.Error("faults with resampling miss policy ran")
	}
	// The fault config must actually run and report availability.
	cfg.Requests = 3000
	res, err := repro.RunTrial(cfg, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Faulted || res.FaultEvents == 0 || res.Availability <= 0 || res.Availability > 1 {
		t.Errorf("fault metrics missing: %+v", res)
	}
}

func TestBuildConfigShard(t *testing.T) {
	cfg, err := buildConfig(10, "torus", 50, 2, 0, "two-choices", 4, 2, 0, "resample", "scalar", "split", "none", "none", 0, "none", 0, 0, "none", "uniform", 0, 4, "racy", 256, 1)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Workers != 4 || cfg.Shard != repro.ShardRacy || cfg.Chunk != 256 {
		t.Errorf("workers/shard/chunk = %d/%v/%d, want 4/racy/256", cfg.Workers, cfg.Shard, cfg.Chunk)
	}
	if _, err := repro.RunTrial(cfg, 0); err != nil {
		t.Fatalf("built sharded config does not run: %v", err)
	}
	if _, err := buildConfig(10, "torus", 50, 2, 0, "nearest", -1, 2, 0, "resample", "scalar", "split", "none", "none", 0, "none", 0, 0, "none", "uniform", 0, 4, "bogus", 0, 1); err == nil {
		t.Error("bogus shard mode accepted")
	}
	// Sharding without the split discipline must be rejected at run time.
	bad, err := buildConfig(10, "torus", 50, 2, 0, "nearest", -1, 2, 0, "resample", "scalar", "interleaved", "none", "none", 0, "none", 0, 0, "none", "uniform", 0, 2, "deterministic", 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := repro.RunTrial(bad, 0); err == nil {
		t.Error("sharded interleaved config ran")
	}
}

func TestBuildConfigHetero(t *testing.T) {
	cfg, err := buildConfig(10, "torus", 50, 2, 0, "two-choices", 4, 2, 0, "escalate", "scalar", "interleaved", "none", "none", 0, "none", 0, 0, "arrival", "power-law", 0.01, 0, "deterministic", 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Hetero != repro.HeteroArrival || cfg.Profile != repro.ProfilePowerLaw || cfg.ArrivalRate != 0.01 {
		t.Errorf("hetero/profile/rate = %v/%v/%v, want arrival/power-law/0.01", cfg.Hetero, cfg.Profile, cfg.ArrivalRate)
	}
	if _, err := buildConfig(10, "torus", 50, 2, 0, "nearest", -1, 2, 0, "resample", "scalar", "interleaved", "none", "none", 0, "none", 0, 0, "bogus", "uniform", 0, 0, "deterministic", 0, 1); err == nil {
		t.Error("bogus hetero mode accepted")
	}
	if _, err := buildConfig(10, "torus", 50, 2, 0, "nearest", -1, 2, 0, "resample", "scalar", "interleaved", "none", "none", 0, "none", 0, 0, "capacity", "bogus", 0, 0, "deterministic", 0, 1); err == nil {
		t.Error("bogus cache profile accepted")
	}
	// An arrival mode without a rate must be rejected at run time.
	bad, err := buildConfig(10, "torus", 50, 2, 0, "nearest", -1, 2, 0, "escalate", "scalar", "interleaved", "none", "none", 0, "none", 0, 0, "arrival", "two-tier", 0, 0, "deterministic", 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := repro.RunTrial(bad, 0); err == nil {
		t.Error("arrival without rate ran")
	}
	// So must arrivals under the resampling miss policy.
	bad, err = buildConfig(10, "torus", 50, 2, 0, "nearest", -1, 2, 0, "resample", "scalar", "interleaved", "none", "none", 0, "none", 0, 0, "arrival", "two-tier", 0.01, 0, "deterministic", 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := repro.RunTrial(bad, 0); err == nil {
		t.Error("arrivals with resampling miss policy ran")
	}
	// The hetero config must actually run and report arrival counters.
	cfg.Requests = 3000
	res, err := repro.RunTrial(cfg, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.ArrivalEvents == 0 {
		t.Errorf("no arrival events: %+v", res)
	}
}
