// Command cachesim runs a single cache-network simulation configuration
// and prints the measured maximum load and communication cost.
//
// Examples:
//
//	cachesim -side 45 -k 500 -m 10 -strategy two-choices -radius 8 -trials 100
//	cachesim -side 45 -k 2000 -m 1 -strategy nearest -gamma 0.8 -trials 50
//
// Wide worlds (n = 10⁶ servers) at flat memory — streaming metrics, the
// batched split-stream request discipline, and the tile-bucketed spatial
// replica index (sub-second trials):
//
//	cachesim -side 1000 -k 10000 -m 10 -strategy two-choices -radius 8 \
//	    -metrics streaming -streams split -index tiles -trials 4
//
// The §VI dynamic regime — caches migrate replicas mid-trial while
// requests keep arriving (uniformly with -churn replicas, chasing a
// drifting popularity with -churn drift):
//
//	cachesim -side 25 -k 2000 -m 4 -strategy two-choices -radius 6 \
//	    -requests 8192 -churn replicas -churn-rate 0.5 -trials 20
//
// Intra-trial sharding — one trial's request pipeline on P workers
// (requires -streams split; -shard-workers is orthogonal to -workers,
// which parallelizes across trials). The default deterministic mode is
// bit-identical for every P; racy mode shares one atomic load vector to
// model allocation under stale load reads:
//
//	cachesim -side 1000 -k 10000 -m 10 -strategy two-choices -radius 8 \
//	    -metrics streaming -streams split -index tiles -shard-workers 8 -trials 4
//	cachesim -side 25 -k 2000 -m 4 -strategy two-choices -radius 6 \
//	    -streams split -shard-workers 8 -shard racy -chunk 256 -trials 20
//
// Node fault injection — servers crash (and optionally recover)
// mid-trial while the strategies mask dead nodes and degrade
// gracefully (-faults regional kills whole tile-aligned regions;
// faults require -miss escalate or -miss origin):
//
//	cachesim -side 25 -k 2000 -m 4 -strategy two-choices -radius 6 \
//	    -requests 8192 -miss escalate -faults crash -fault-rate 0.05 \
//	    -recover-rate 0.02 -trials 20
//
// Heterogeneous nodes — per-node cache sizes M_u and service capacities
// C_u drawn from a profile (-hetero capacity), with the two-choices
// comparison weighted to load/C_u; -hetero arrival additionally starts
// ~25% of nodes vacant and lets them join mid-trial (needs
// -arrival-rate and -miss escalate or origin):
//
//	cachesim -side 25 -k 2000 -m 4 -strategy two-choices -radius 6 \
//	    -requests 8192 -hetero capacity -profile two-tier -trials 20
//	cachesim -side 25 -k 2000 -m 4 -strategy two-choices -radius 6 \
//	    -requests 8192 -miss escalate -hetero arrival -profile power-law \
//	    -arrival-rate 0.01 -trials 20
package main

import (
	"flag"
	"fmt"
	"os"

	"repro"
	"repro/internal/grid"
)

func main() {
	var (
		side     = flag.Int("side", 45, "lattice side L (n = L^2 servers)")
		topo     = flag.String("topology", "torus", "torus or grid")
		k        = flag.Int("k", 500, "library size K")
		m        = flag.Int("m", 10, "cache size M")
		gamma    = flag.Float64("gamma", 0, "Zipf exponent (0 = uniform popularity)")
		strategy = flag.String("strategy", "two-choices", "nearest, two-choices, one-choice or oracle")
		radius   = flag.Int("radius", -1, "proximity radius r in hops (-1 = unbounded)")
		choices  = flag.Int("choices", 2, "number of sampled candidates d")
		requests = flag.Int("requests", 0, "requests per trial (0 = n)")
		miss     = flag.String("miss", "resample", "miss policy: resample, escalate or origin")
		metrics  = flag.String("metrics", "scalar", "per-trial instrumentation: scalar, links or streaming")
		streams  = flag.String("streams", "interleaved", "request RNG discipline: interleaved or split (batched generation)")
		index    = flag.String("index", "none", "candidate enumeration for bounded radii: none or tiles (spatial replica index)")
		churn    = flag.String("churn", "none", "mid-trial re-placement: none, replicas (uniform migration) or drift (popularity-coupled)")
		churnRt  = flag.Float64("churn-rate", 0, "expected replica migrations per request (required with -churn)")
		faults   = flag.String("faults", "none", "node fault injection: none, crash (uniform) or regional (tile-aligned failure domains)")
		faultRt  = flag.Float64("fault-rate", 0, "expected crash events per request (required with -faults; needs -miss escalate or origin)")
		recovRt  = flag.Float64("recover-rate", 0, "expected recovery events per request (0 = permanent crashes)")
		hetero   = flag.String("hetero", "none", "node heterogeneity: none, capacity (per-node M_u/C_u) or arrival (plus mid-trial joins)")
		profile  = flag.String("profile", "uniform", "per-node cache-size profile under -hetero: uniform, two-tier or power-law")
		arrRt    = flag.Float64("arrival-rate", 0, "expected node arrivals per request (required with -hetero arrival)")
		shardW   = flag.Int("shard-workers", 0, "intra-trial shard workers P (0 = sequential engine; needs -streams split)")
		shard    = flag.String("shard", "deterministic", "sharded load visibility: deterministic (bit-identical across P) or racy (shared atomic loads)")
		chunk    = flag.Int("chunk", 0, "request-pipeline chunk size (0 = engine default; multiple of 64 under -shard-workers)")
		trials   = flag.Int("trials", 50, "independent trials")
		workers  = flag.Int("workers", 0, "parallel workers across trials (0 = GOMAXPROCS)")
		seed     = flag.Uint64("seed", 2017, "root random seed")
		verbose  = flag.Bool("v", false, "print per-era placement diagnostics (the served-mode snapshot stamp)")
	)
	flag.Parse()

	cfg, err := buildConfig(*side, *topo, *k, *m, *gamma, *strategy, *radius, *choices, *requests, *miss, *metrics, *streams, *index, *churn, *churnRt, *faults, *faultRt, *recovRt, *hetero, *profile, *arrRt, *shardW, *shard, *chunk, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "cachesim:", err)
		os.Exit(2)
	}
	agg, err := repro.Run(cfg, *trials, *workers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "cachesim:", err)
		os.Exit(1)
	}
	fmt.Printf("n=%d K=%d M=%d strategy=%s radius=%d trials=%d\n",
		cfg.N(), cfg.K, cfg.M, cfg.Strategy.Kind, cfg.Strategy.Radius, agg.Trials)
	fmt.Printf("max load:  %s\n", agg.MaxLoad.String())
	fmt.Printf("comm cost: %s hops\n", agg.MeanCost.String())
	fmt.Printf("escalated: %.4f of requests; backhaul: %.4f; uncached files/trial: %.1f\n",
		agg.Escalated.Mean(), agg.Backhaul.Mean(), agg.Uncached.Mean())
	if cfg.Churn != repro.ChurnNone {
		fmt.Printf("churn:     %s events/trial (skipped %s)\n",
			agg.ChurnEvents.String(), agg.ChurnSkipped.String())
	}
	if cfg.Faults != repro.FaultsNone {
		fmt.Printf("faults:    %s crashes/trial, %s recoveries (skipped %s); dead at end %s\n",
			agg.FaultEvents.String(), agg.RecoverEvents.String(),
			agg.FaultSkipped.String(), agg.DeadNodes.String())
		fmt.Printf("avail:     %s of requests served in-network; retried %s; stranded load %s\n",
			agg.Availability.String(), agg.Retried.String(), agg.DeadLoad.String())
	}
	if cfg.Hetero == repro.HeteroArrival {
		fmt.Printf("arrivals:  %s joins/trial (skipped %s); vacant at end %s\n",
			agg.ArrivalEvents.String(), agg.ArrivalSkipped.String(), agg.Vacant.String())
	}
	switch cfg.Metrics {
	case repro.MetricsLinks:
		fmt.Printf("link load:  max %s, congestion %s\n",
			agg.MaxLinkLoad.String(), agg.LinkCongestion.String())
	case repro.MetricsStreaming:
		fmt.Printf("hops:      max %s, std %s (streaming)\n", agg.HopMax.String(), agg.HopStd.String())
		fmt.Printf("load p99:  %s\n", agg.LoadP99.String())
		if agg.LinkMaxApprox.Mean() > 0 {
			fmt.Printf("link load: max ≈ %s (space-saving sketch upper bound)\n", agg.LinkMaxApprox.String())
		}
	}
	if *verbose {
		printEras(cfg, *trials)
	}
}

// printEras prints the placement-era diagnostic stamp of each trial —
// the same World.Snapshot stamp the served daemon reports on /metrics,
// so batch and served runs of one (config, seed) pair can be lined up
// era by era. Capped at the first few eras; a snapshot compile is a
// full placement build.
func printEras(cfg repro.Config, trials int) {
	const maxEras = 8
	w, err := repro.Compile(cfg)
	if err != nil {
		return
	}
	fmt.Println("placement eras (served-mode snapshot stamps):")
	for t := 0; t < min(trials, maxEras); t++ {
		fmt.Printf("  %s\n", w.Snapshot(uint64(t)).Info())
	}
	if trials > maxEras {
		fmt.Printf("  … %d more eras\n", trials-maxEras)
	}
}

// buildConfig translates CLI flags into a sim configuration.
func buildConfig(side int, topo string, k, m int, gamma float64, strategy string,
	radius, choices, requests int, miss, metrics, streams, index, churn string,
	churnRate float64, faults string, faultRate, recoverRate float64,
	hetero, profile string, arrivalRate float64,
	shardWorkers int, shard string, chunk int, seed uint64) (repro.Config, error) {
	var cfg repro.Config
	tp, err := grid.ParseTopology(topo)
	if err != nil {
		return cfg, err
	}
	mm, err := repro.ParseMetricsMode(metrics)
	if err != nil {
		return cfg, err
	}
	sd, err := repro.ParseStreams(streams)
	if err != nil {
		return cfg, err
	}
	ix, err := repro.ParseIndex(index)
	if err != nil {
		return cfg, err
	}
	ch, err := repro.ParseChurn(churn)
	if err != nil {
		return cfg, err
	}
	fm, err := repro.ParseFaults(faults)
	if err != nil {
		return cfg, err
	}
	sh, err := repro.ParseShard(shard)
	if err != nil {
		return cfg, err
	}
	hm, err := repro.ParseHetero(hetero)
	if err != nil {
		return cfg, err
	}
	pf, err := repro.ParseProfile(profile)
	if err != nil {
		return cfg, err
	}
	mp, err := repro.ParseMiss(miss)
	if err != nil {
		return cfg, err
	}
	cfg = repro.Config{
		Side: side, Topology: tp, K: k, M: m,
		Requests: requests, MissPolicy: mp, Metrics: mm, Streams: sd, Index: ix,
		Churn: ch, ChurnRate: churnRate,
		Faults: fm, FaultRate: faultRate, RecoverRate: recoverRate,
		Hetero: hm, Profile: pf, ArrivalRate: arrivalRate,
		Workers: shardWorkers, Shard: sh, Chunk: chunk, Seed: seed,
	}
	if gamma > 0 {
		cfg.Popularity = repro.PopSpec{Kind: repro.PopZipf, Gamma: gamma}
	}
	switch strategy {
	case "nearest":
		cfg.Strategy = repro.StrategySpec{Kind: repro.Nearest}
	case "two-choices", "two":
		cfg.Strategy = repro.StrategySpec{Kind: repro.TwoChoices, Radius: radius, Choices: choices}
	case "one-choice", "one":
		cfg.Strategy = repro.StrategySpec{Kind: repro.OneChoiceRandom, Radius: radius}
	case "oracle":
		cfg.Strategy = repro.StrategySpec{Kind: repro.Oracle, Radius: radius}
	default:
		return cfg, fmt.Errorf("unknown strategy %q", strategy)
	}
	return cfg, nil
}
