package main

import (
	"net/http"
	"os"
	"path/filepath"
	"testing"
	"time"
)

const testSpec = `{
  "name": "cmdtest",
  "trials": 6,
  "blocks": 3,
  "seed": 5,
  "base": {"side": 6, "k": 20, "m": 2},
  "axes": [{"field": "radius", "values": [2, 3]}]
}`

func writeSpec(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "spec.json")
	if err := os.WriteFile(path, []byte(testSpec), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestDirectVsChaosRunBitIdentical is the CLI-level acceptance pin: a
// chaos run (worker kills, stalls, duplicate deliveries, coordinator
// 503s) must produce artifacts byte-identical to -mode direct.
func TestDirectVsChaosRunBitIdentical(t *testing.T) {
	spec := writeSpec(t)
	dir := t.TempDir()
	direct := filepath.Join(dir, "direct")
	chaotic := filepath.Join(dir, "chaotic")

	if err := run("direct", spec, "", direct, "off", "", "", 0, 0, nil, 0); err != nil {
		t.Fatalf("direct: %v", err)
	}
	chaos := chaosFor(true, 0.5, 0.3, 0.5, 42)
	chaos.MaxDelay = 10 * time.Millisecond
	if err := run("run", spec, "", chaotic, "", "", "127.0.0.1:0",
		3, 300*time.Millisecond, chaos, 0.2); err != nil {
		t.Fatalf("chaos run: %v", err)
	}

	for _, ext := range []string{".csv", ".json"} {
		want, err := os.ReadFile(direct + ext)
		if err != nil {
			t.Fatal(err)
		}
		got, err := os.ReadFile(chaotic + ext)
		if err != nil {
			t.Fatal(err)
		}
		if string(got) != string(want) {
			t.Errorf("%s artifact differs between chaos run and direct run:\n got: %.200s\nwant: %.200s", ext, got, want)
		}
	}
	// The run left a journal behind for resumability.
	if _, err := os.Stat(chaotic + ".journal"); err != nil {
		t.Errorf("journal missing: %v", err)
	}
}

func TestRunFromPreset(t *testing.T) {
	out := filepath.Join(t.TempDir(), "smoke")
	if err := run("direct", "", "smoke", out, "off", "", "", 0, 0, nil, 0); err != nil {
		t.Fatalf("preset direct: %v", err)
	}
	if _, err := os.Stat(out + ".csv"); err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	if err := run("direct", "", "", "out", "off", "", "", 0, 0, nil, 0); err == nil {
		t.Error("no spec accepted")
	}
	if err := run("direct", "x.json", "smoke", "out", "off", "", "", 0, 0, nil, 0); err == nil {
		t.Error("-spec plus -preset accepted")
	}
	if err := run("work", "", "", "", "", "", "", 0, 0, nil, 0); err == nil {
		t.Error("work mode without -join accepted")
	}
	if err := run("bogus", "", "", "", "", "", "", 0, 0, nil, 0); err == nil {
		t.Error("unknown mode accepted")
	}
	if err := run("direct", "", "nope", "out", "off", "", "", 0, 0, nil, 0); err == nil {
		t.Error("unknown preset accepted")
	}
}

func TestJournalPathDefaulting(t *testing.T) {
	if got := journalPath("", "out/run"); got != "out/run.journal" {
		t.Errorf("default journal %q", got)
	}
	if got := journalPath("off", "out/run"); got != "" {
		t.Errorf("journal %q, want disabled", got)
	}
	if got := journalPath("/tmp/j", "out/run"); got != "/tmp/j" {
		t.Errorf("journal %q", got)
	}
}

// TestHTTPServerHardened pins the timeout hardening on the work-queue
// server (same contract as cmd/cachesimd): a stuck peer cannot hold a
// connection open forever.
func TestHTTPServerHardened(t *testing.T) {
	srv := newHTTPServer(":0", http.NotFoundHandler())
	if srv.ReadHeaderTimeout <= 0 || srv.ReadTimeout <= 0 || srv.WriteTimeout <= 0 || srv.IdleTimeout <= 0 {
		t.Fatalf("missing deadlines: %+v", srv)
	}
}
