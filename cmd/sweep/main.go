// Command sweep is the crash-tolerant sweep orchestrator: it expands a
// declarative JSON grid spec (or a named preset) into content-keyed
// (Config, trial-block) shards, distributes them to worker processes
// over a minimal HTTP work-queue protocol with lease-based assignment
// and a resumable fsync'd journal, and merges the results into CSV and
// JSON artifacts that are byte-identical to a single-process run — no
// matter how many workers crash, stall or double-deliver, and even if
// the coordinator itself is killed and restarted (see docs/sweep.md).
//
// Everything in one process (coordinator + 4 loopback workers):
//
//	sweep -preset smoke -workers 4 -out out/smoke
//
// The same sweep split across machines:
//
//	sweep -mode serve -spec grid.json -addr :8090 -out out/grid
//	sweep -mode work -join http://coord:8090        # on each worker box
//
// Kill the coordinator at any point and rerun the same serve command:
// it resumes from out/grid.journal without re-running finished shards.
// The single-host reference (no HTTP, no journal, same bytes):
//
//	sweep -mode direct -preset smoke -out out/golden
//
// A chaos run — workers randomly crash mid-shard, stall and
// double-deliver, the coordinator injects 503s — must produce the same
// artifact bytes as the direct run; CI enforces exactly that:
//
//	sweep -preset smoke -workers 4 -chaos -out out/chaotic
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"repro/internal/experiments"
	"repro/internal/sim"
	"repro/internal/sweep"
)

func main() {
	var (
		mode     = flag.String("mode", "run", "run, serve, work or direct")
		specPath = flag.String("spec", "", "sweep grid spec JSON file")
		preset   = flag.String("preset", "", fmt.Sprintf("named preset spec %v (alternative to -spec)", experiments.SweepIDs()))
		out      = flag.String("out", "sweep-out", "artifact base path (writes .csv and .json)")
		journal  = flag.String("journal", "", "coordinator journal path (default <out>.journal; \"off\" disables)")
		workers  = flag.Int("workers", 4, "in-process workers (mode run)")
		addr     = flag.String("addr", "127.0.0.1:0", "coordinator listen address (modes run, serve)")
		join     = flag.String("join", "", "coordinator URL to join (mode work)")
		leaseTTL = flag.Duration("lease-ttl", sweep.DefaultLeaseTTL, "lease deadline; crashed workers' shards re-queue after this")
		chaos    = flag.Bool("chaos", false, "inject worker kills, stalls, duplicate deliveries and coordinator 503s")
		kill     = flag.Float64("chaos-kill", 0.2, "with -chaos: probability a worker abandons a shard mid-block")
		delay    = flag.Float64("chaos-delay", 0.2, "with -chaos: probability a completion is stalled")
		dup      = flag.Float64("chaos-dup", 0.2, "with -chaos: probability a completion is delivered twice")
		flake    = flag.Float64("chaos-flake", 0.1, "with -chaos: probability the coordinator answers 503")
		seed     = flag.Uint64("chaos-seed", 1, "chaos decision seed")
	)
	flag.Parse()

	if err := run(*mode, *specPath, *preset, *out, *journal, *join, *addr,
		*workers, *leaseTTL, chaosFor(*chaos, *kill, *delay, *dup, *seed), flakeFor(*chaos, *flake)); err != nil {
		fmt.Fprintln(os.Stderr, "sweep:", err)
		os.Exit(1)
	}
}

// chaosFor builds the worker chaos profile (nil when chaos is off).
func chaosFor(on bool, kill, delay, dup float64, seed uint64) *sweep.Chaos {
	if !on {
		return nil
	}
	return &sweep.Chaos{
		KillProb: kill, DelayProb: delay, MaxDelay: 100 * time.Millisecond,
		DupProb: dup, Seed: seed,
	}
}

// flakeFor returns the coordinator 503 probability (0 when chaos is off).
func flakeFor(on bool, flake float64) float64 {
	if !on {
		return 0
	}
	return flake
}

// run dispatches one mode; split from main so tests can drive it.
func run(mode, specPath, preset, out, journal, join, addr string,
	workers int, leaseTTL time.Duration, chaos *sweep.Chaos, flakeProb float64) error {
	switch mode {
	case "work":
		return workMode(join, chaos)
	case "direct", "run", "serve":
		spec, err := loadSpec(specPath, preset)
		if err != nil {
			return err
		}
		if mode == "direct" {
			aggs, err := sweep.RunDirect(spec)
			if err != nil {
				return err
			}
			return writeArtifacts(out, spec, aggs)
		}
		if workers < 1 && mode == "run" {
			return fmt.Errorf("mode run needs at least one worker, got %d", workers)
		}
		if mode == "serve" {
			workers = 0
		}
		return coordinate(spec, out, journalPath(journal, out), addr, workers, leaseTTL, chaos, flakeProb)
	default:
		return fmt.Errorf("unknown mode %q (want run, serve, work or direct)", mode)
	}
}

// loadSpec resolves -spec/-preset into a parsed sweep spec.
func loadSpec(specPath, preset string) (*sweep.Spec, error) {
	switch {
	case specPath != "" && preset != "":
		return nil, errors.New("-spec and -preset are mutually exclusive")
	case preset != "":
		return experiments.SweepSpec(preset)
	case specPath != "":
		data, err := os.ReadFile(specPath)
		if err != nil {
			return nil, err
		}
		return sweep.ParseSpec(data)
	default:
		return nil, errors.New("one of -spec or -preset is required")
	}
}

// journalPath resolves the -journal flag ("" defaults next to the
// artifacts, "off" disables journaling).
func journalPath(flagVal, out string) string {
	switch flagVal {
	case "":
		return out + ".journal"
	case "off":
		return ""
	default:
		return flagVal
	}
}

// newHTTPServer wraps a handler in a server with the same hardening as
// cmd/cachesimd: header/body/write deadlines so a stuck peer cannot
// pin a connection forever.
func newHTTPServer(addr string, h http.Handler) *http.Server {
	return &http.Server{
		Addr:              addr,
		Handler:           h,
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      30 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
}

// coordinate runs the coordinator (modes run and serve): it serves the
// work queue on addr, optionally drives n loopback workers, waits for
// every shard, and writes the merged artifacts. SIGINT/SIGTERM drain
// gracefully: no new leases, in-flight completions land in the journal,
// and a later invocation resumes from it.
func coordinate(spec *sweep.Spec, out, journal, addr string, n int,
	leaseTTL time.Duration, chaos *sweep.Chaos, flakeProb float64) error {
	if out != "" {
		if dir := filepath.Dir(out); dir != "." {
			if err := os.MkdirAll(dir, 0o755); err != nil {
				return err
			}
		}
	}
	coord, err := sweep.NewCoordinator(spec, journal, sweep.CoordinatorOptions{
		LeaseTTL:  leaseTTL,
		FlakeProb: flakeProb,
		FlakeSeed: 2017,
	})
	if err != nil {
		return err
	}
	defer coord.Close()

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	srv := newHTTPServer(addr, coord.Handler())
	go srv.Serve(ln)
	defer srv.Close()
	base := "http://" + ln.Addr().String()
	st := coord.Status()
	fmt.Printf("sweep: %s (%d shards, %d done) on %s\n", spec.Name, st.Total, st.Done, base)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	var ws []*sweep.Worker
	werrs := make(chan error, n)
	for i := 0; i < n; i++ {
		w := sweep.NewWorker(base, sweep.WorkerOptions{
			ID:    fmt.Sprintf("local-%d", i),
			Chaos: chaosSeeded(chaos, uint64(i)),
		})
		ws = append(ws, w)
		go func(w *sweep.Worker) { werrs <- w.Run(ctx) }(w)
	}

	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, syscall.SIGINT, syscall.SIGTERM)
	defer signal.Stop(sigs)
	go func() {
		sig, ok := <-sigs
		if !ok {
			return
		}
		fmt.Printf("sweep: %v — draining (journal %s keeps finished shards)\n", sig, journal)
		coord.Drain()
		for _, w := range ws {
			w.RequestDrain()
		}
		// A second signal aborts immediately.
		<-sigs
		cancel()
	}()

	err = coord.Wait(ctx)
	for range ws {
		if werr := <-werrs; werr != nil && err == nil && !errors.Is(werr, context.Canceled) {
			err = werr
		}
	}
	if err != nil {
		return err
	}
	final := coord.Status()
	if final.Done < final.Total {
		return fmt.Errorf("drained with %d/%d shards done; rerun with the same journal to resume", final.Done, final.Total)
	}
	aggs, err := coord.Merged()
	if err != nil {
		return err
	}
	if err := writeArtifacts(out, spec, aggs); err != nil {
		return err
	}
	fmt.Printf("sweep: %d shards merged (%d lease expiries, %d duplicates dropped) → %s.{csv,json}\n",
		final.Total, coord.Expiries(), coord.Dupes(), out)
	return nil
}

// chaosSeeded gives each worker its own chaos stream.
func chaosSeeded(c *sweep.Chaos, i uint64) *sweep.Chaos {
	if c == nil {
		return nil
	}
	cc := *c
	cc.Seed = c.Seed + i*0x9e37
	return &cc
}

// workMode runs a single worker against a remote coordinator until the
// sweep is done or SIGINT/SIGTERM asks it to finish its current shard
// and exit.
func workMode(join string, chaos *sweep.Chaos) error {
	if join == "" {
		return errors.New("mode work requires -join URL")
	}
	host, _ := os.Hostname()
	w := sweep.NewWorker(join, sweep.WorkerOptions{
		ID:    fmt.Sprintf("%s-%d", host, os.Getpid()),
		Chaos: chaos,
	})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, syscall.SIGINT, syscall.SIGTERM)
	defer signal.Stop(sigs)
	go func() {
		if _, ok := <-sigs; !ok {
			return
		}
		fmt.Println("sweep: draining after current shard")
		w.RequestDrain()
		<-sigs
		cancel()
	}()
	if err := w.Run(ctx); err != nil {
		return err
	}
	fmt.Printf("sweep: worker done (%d shards, %d abandoned, %d duplicate acks)\n",
		w.Shards, w.Abandoned, w.Duplicates)
	return nil
}

// writeArtifacts writes <out>.csv and <out>.json atomically (temp file
// plus rename), so a crash mid-write never leaves a torn artifact.
func writeArtifacts(out string, spec *sweep.Spec, aggs []sim.Aggregate) error {
	if dir := filepath.Dir(out); dir != "." {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
	}
	write := func(path string, emit func(w *os.File) error) error {
		f, err := os.CreateTemp(filepath.Dir(path), filepath.Base(path)+".tmp*")
		if err != nil {
			return err
		}
		defer os.Remove(f.Name())
		if err := emit(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		return os.Rename(f.Name(), path)
	}
	if err := write(out+".csv", func(f *os.File) error { return sweep.WriteCSV(f, spec, aggs) }); err != nil {
		return err
	}
	return write(out+".json", func(f *os.File) error { return sweep.WriteJSON(f, spec, aggs) })
}
