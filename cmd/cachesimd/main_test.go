package main

import (
	"testing"

	"repro"
)

// TestBuildConfig checks the flag translation: served configs always
// pin the split request discipline (the bit-compat precondition of the
// golden pin) and reject unknown enum values.
func TestBuildConfig(t *testing.T) {
	cfg, err := buildConfig(32, "torus", 2000, 4, 0.8, "two-choices", 6, 2,
		0, "escalate", "tiles", "replicas", 0.01, "crash", 0.001, 0.001, "none", "uniform", 0, 2017)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Streams != repro.StreamsSplit {
		t.Fatal("served config must pin split streams")
	}
	if cfg.Strategy.Kind != repro.TwoChoices || cfg.Strategy.Radius != 6 {
		t.Fatalf("strategy %+v", cfg.Strategy)
	}
	if cfg.Churn != repro.ChurnReplicas || cfg.Faults != repro.FaultsCrash {
		t.Fatalf("dynamics %v/%v", cfg.Churn, cfg.Faults)
	}
	if _, err := repro.Compile(cfg); err != nil {
		t.Fatalf("config does not compile: %v", err)
	}

	for name, f := range map[string]func() error{
		"strategy": func() error {
			_, err := buildConfig(32, "torus", 100, 4, 0, "best-effort", 6, 2, 0, "resample", "none", "none", 0, "none", 0, 0, "none", "uniform", 0, 1)
			return err
		},
		"topology": func() error {
			_, err := buildConfig(32, "ring", 100, 4, 0, "nearest", 6, 2, 0, "resample", "none", "none", 0, "none", 0, 0, "none", "uniform", 0, 1)
			return err
		},
		"churn": func() error {
			_, err := buildConfig(32, "torus", 100, 4, 0, "nearest", 6, 2, 0, "resample", "none", "sometimes", 0, "none", 0, 0, "none", "uniform", 0, 1)
			return err
		},
	} {
		if f() == nil {
			t.Errorf("%s: bad value accepted", name)
		}
	}
}

// TestNewHTTPServerHardened pins the daemon's connection deadlines: a
// peer that stalls mid-header, trickles a body or never reads its
// response must be cut off, not hold a connection forever.
func TestNewHTTPServerHardened(t *testing.T) {
	srv := newHTTPServer(":9999", nil)
	if srv.Addr != ":9999" {
		t.Fatalf("addr %q", srv.Addr)
	}
	if srv.ReadHeaderTimeout <= 0 || srv.ReadTimeout <= 0 || srv.WriteTimeout <= 0 || srv.IdleTimeout <= 0 {
		t.Fatalf("missing connection deadlines: %+v", srv)
	}
	if srv.ReadHeaderTimeout > srv.ReadTimeout {
		t.Fatalf("header deadline %v exceeds read deadline %v", srv.ReadHeaderTimeout, srv.ReadTimeout)
	}
}
