// Command cachesimd serves the paper's placement policy as a
// long-running HTTP daemon: it compiles a simulation world at startup
// and answers batched placement queries — which replica of file j
// should user u fetch — against a lock-free snapshot of the placement,
// with churn and fault events applied between request batches by a
// single mutator goroutine (see internal/serve and docs/serving.md).
//
// Start a quiesced daemon and query it:
//
//	cachesimd -side 32 -k 2000 -m 4 -strategy two-choices -radius 6 \
//	    -gamma 0.8 -index tiles -addr :8080
//	curl -s localhost:8080/v1/place -d '{"pairs":[{"u":17,"f":3}]}'
//	curl -s localhost:8080/healthz
//	curl -s localhost:8080/metrics
//
// A dynamic daemon (replica churn plus node crashes, applied between
// batches, republished copy-on-write):
//
//	cachesimd -side 32 -k 2000 -m 4 -strategy two-choices -radius 6 \
//	    -miss escalate -churn replicas -churn-rate 0.01 \
//	    -faults crash -fault-rate 0.001 -recover-rate 0.001
//
// SIGHUP recompiles the next placement era and hot-swaps it (in-flight
// batches finish on the old snapshot); SIGINT/SIGTERM drain gracefully.
//
// The in-process load generator skips HTTP entirely and drives the
// snapshot engine directly — the ≥10⁶ decisions/s headline path:
//
//	cachesimd -side 32 -k 2000 -m 4 -strategy two-choices -radius 6 \
//	    -gamma 0.8 -index tiles -loadgen 4000000 -conns 8 -batch 256
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro"
	"repro/internal/grid"
	"repro/internal/serve"
)

func main() {
	var (
		side     = flag.Int("side", 32, "lattice side L (n = L^2 servers)")
		topo     = flag.String("topology", "torus", "torus or grid")
		k        = flag.Int("k", 2000, "library size K")
		m        = flag.Int("m", 4, "cache size M")
		gamma    = flag.Float64("gamma", 0, "Zipf exponent (0 = uniform popularity)")
		strategy = flag.String("strategy", "two-choices", "nearest, two-choices, one-choice or oracle")
		radius   = flag.Int("radius", 6, "proximity radius r in hops (-1 = unbounded)")
		choices  = flag.Int("choices", 2, "number of sampled candidates d")
		requests = flag.Int("requests", 0, "requests per era in loadgen replay (0 = n)")
		miss     = flag.String("miss", "resample", "miss policy: resample, escalate or origin")
		index    = flag.String("index", "none", "candidate enumeration for bounded radii: none or tiles")
		churn    = flag.String("churn", "none", "between-batch re-placement: none, replicas or drift")
		churnRt  = flag.Float64("churn-rate", 0, "expected replica migrations per served request")
		faults   = flag.String("faults", "none", "node fault injection: none, crash or regional")
		faultRt  = flag.Float64("fault-rate", 0, "expected crash events per served request")
		recovRt  = flag.Float64("recover-rate", 0, "expected recovery events per served request")
		hetero   = flag.String("hetero", "none", "node heterogeneity: none, capacity or arrival")
		profile  = flag.String("profile", "uniform", "per-node cache-size profile under -hetero: uniform, two-tier or power-law")
		arrRt    = flag.Float64("arrival-rate", 0, "expected node arrivals per served request (with -hetero arrival)")
		seed     = flag.Uint64("seed", 2017, "root random seed")
		era      = flag.Uint64("era", 0, "initial placement era (trial index under -seed)")
		addr     = flag.String("addr", ":8080", "HTTP listen address")
		loadgen  = flag.Int("loadgen", 0, "serve N decisions in-process and exit (no HTTP)")
		conns    = flag.Int("conns", 8, "loadgen concurrent decision contexts")
		batch    = flag.Int("batch", 256, "loadgen queries per batch")
	)
	flag.Parse()

	cfg, err := buildConfig(*side, *topo, *k, *m, *gamma, *strategy, *radius, *choices,
		*requests, *miss, *index, *churn, *churnRt, *faults, *faultRt, *recovRt,
		*hetero, *profile, *arrRt, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "cachesimd:", err)
		os.Exit(2)
	}
	w, err := repro.Compile(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "cachesimd:", err)
		os.Exit(2)
	}
	e := serve.New(w, *era)
	defer e.Close()

	if *loadgen > 0 {
		res := serve.Loadgen(e, *loadgen, *conns, *batch)
		fmt.Printf("loadgen: %d decisions in %v over %d conns (batch %d)\n",
			res.Decisions, res.Elapsed.Round(time.Millisecond), res.Conns, res.Batch)
		fmt.Printf("rate:    %.0f decisions/s\n", res.PerSec)
		fmt.Printf("state:   %s\n", e.Info())
		return
	}

	srv := newHTTPServer(*addr, serve.NewServer(e))
	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, syscall.SIGINT, syscall.SIGTERM, syscall.SIGHUP)
	done := make(chan struct{})
	go func() {
		defer close(done)
		nextEra := *era
		for sig := range sigs {
			if sig == syscall.SIGHUP {
				nextEra++
				fmt.Printf("cachesimd: SIGHUP — reloading placement era %d\n", nextEra)
				e.Reload(nextEra)
				continue
			}
			fmt.Printf("cachesimd: %v — draining\n", sig)
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			srv.Shutdown(ctx)
			cancel()
			return
		}
	}()

	fmt.Printf("cachesimd: serving n=%d K=%d M=%d strategy=%s on %s (%s)\n",
		cfg.N(), cfg.K, cfg.M, cfg.Strategy.Kind, *addr, e.Info())
	if err := srv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintln(os.Stderr, "cachesimd:", err)
		os.Exit(1)
	}
	<-done
	fmt.Printf("cachesimd: drained after %d decisions (%s)\n", e.Served(), e.Info())
}

// newHTTPServer wraps the daemon handler in a server with connection
// deadlines: a client that stalls mid-header, trickles a body, or never
// reads its response is cut off instead of pinning a connection (and
// its pooled decision context) forever.
func newHTTPServer(addr string, h http.Handler) *http.Server {
	return &http.Server{
		Addr:              addr,
		Handler:           h,
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      30 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
}

// buildConfig translates CLI flags into a served simulation
// configuration. The request discipline is pinned to split streams:
// the served mode generates queries and strategy draws from separate
// streams by construction, which is also what makes a quiesced daemon
// bit-identical to the batch engine's split-stream trials.
func buildConfig(side int, topo string, k, m int, gamma float64, strategy string,
	radius, choices, requests int, miss, index, churn string, churnRate float64,
	faults string, faultRate, recoverRate float64,
	hetero, profile string, arrivalRate float64, seed uint64) (repro.Config, error) {
	var cfg repro.Config
	tp, err := grid.ParseTopology(topo)
	if err != nil {
		return cfg, err
	}
	ix, err := repro.ParseIndex(index)
	if err != nil {
		return cfg, err
	}
	ch, err := repro.ParseChurn(churn)
	if err != nil {
		return cfg, err
	}
	fm, err := repro.ParseFaults(faults)
	if err != nil {
		return cfg, err
	}
	hm, err := repro.ParseHetero(hetero)
	if err != nil {
		return cfg, err
	}
	pf, err := repro.ParseProfile(profile)
	if err != nil {
		return cfg, err
	}
	mp, err := repro.ParseMiss(miss)
	if err != nil {
		return cfg, err
	}
	cfg = repro.Config{
		Side: side, Topology: tp, K: k, M: m,
		Requests: requests, MissPolicy: mp, Streams: repro.StreamsSplit, Index: ix,
		Churn: ch, ChurnRate: churnRate,
		Faults: fm, FaultRate: faultRate, RecoverRate: recoverRate,
		Hetero: hm, Profile: pf, ArrivalRate: arrivalRate,
		Seed: seed,
	}
	if gamma > 0 {
		cfg.Popularity = repro.PopSpec{Kind: repro.PopZipf, Gamma: gamma}
	}
	switch strategy {
	case "nearest":
		cfg.Strategy = repro.StrategySpec{Kind: repro.Nearest}
	case "two-choices", "two":
		cfg.Strategy = repro.StrategySpec{Kind: repro.TwoChoices, Radius: radius, Choices: choices}
	case "one-choice", "one":
		cfg.Strategy = repro.StrategySpec{Kind: repro.OneChoiceRandom, Radius: radius}
	case "oracle":
		cfg.Strategy = repro.StrategySpec{Kind: repro.Oracle, Radius: radius}
	default:
		return cfg, fmt.Errorf("unknown strategy %q", strategy)
	}
	return cfg, nil
}
