// Trade-off explorer: sweep the proximity radius r for several cache
// sizes and print the (communication cost, maximum load) frontier — a
// text rendition of the paper's Fig. 5 that an operator can use to pick r
// for a target load ceiling.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	const (
		side   = 45 // n = 2025
		k      = 500
		trials = 25
	)
	radii := []int{1, 2, 4, 8, 16, 32}
	fmt.Printf("n=%d, K=%d, uniform popularity, %d trials/point\n\n", side*side, k, trials)
	for _, m := range []int{1, 10, 50, 200} {
		fmt.Printf("M=%d:\n  %-8s %-14s %-14s %s\n", m, "radius", "cost (hops)", "max load", "escalated")
		for _, r := range radii {
			cfg := repro.Config{
				Side: side, K: k, M: m,
				Strategy: repro.StrategySpec{Kind: repro.TwoChoices, Radius: r},
				Seed:     11,
			}
			agg, err := repro.Run(cfg, trials, 0)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  %-8d %-14.2f %-14.2f %.1f%%\n",
				r, agg.MeanCost.Mean(), agg.MaxLoad.Mean(), 100*agg.Escalated.Mean())
		}
		fmt.Println()
	}
	fmt.Println("Reading the frontier: with ample replication (M≥50) a radius of a few")
	fmt.Println("hops already buys the full power of two choices; with M=1 no radius can")
	fmt.Println("help because both choices collapse onto the same few replicas.")
}
