// Supermarket example: the continuous-time view of §VI. Requests arrive
// as a Poisson stream at per-server rate λ and each is dispatched to the
// shorter of two sampled in-radius replicas' queues (JSQ(2)); we compare
// against blind random dispatch as λ approaches saturation.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	base := repro.QueueConfig{
		Side: 25, K: 200, M: 8, // 625 servers, dense replication
		Radius:  6,
		Horizon: 400,
		WarmUp:  80,
		Seed:    3,
	}
	fmt.Printf("supermarket model: n=%d, K=%d, M=%d, r=%d, horizon=%.0f\n\n",
		base.Side*base.Side, base.K, base.M, base.Radius, base.Horizon)
	fmt.Printf("%-8s %-22s %-22s\n", "lambda", "JSQ(2): maxQ / sojourn", "random: maxQ / sojourn")
	for _, lambda := range []float64{0.5, 0.7, 0.9, 0.95} {
		jsq := base
		jsq.Lambda = lambda
		jsq.Choices = 2
		rj, err := repro.RunQueue(jsq)
		if err != nil {
			log.Fatal(err)
		}
		rnd := base
		rnd.Lambda = lambda
		rnd.Choices = 1
		rr, err := repro.RunQueue(rnd)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-8.2f %-22s %-22s\n", lambda,
			fmt.Sprintf("%d / %.2f", rj.MaxQueue, rj.Sojourn.Mean()),
			fmt.Sprintf("%d / %.2f", rr.MaxQueue, rr.Sojourn.Mean()))
	}
	fmt.Println("\nAs λ → 1 the JSQ(2) max queue stays near-flat while random dispatch")
	fmt.Println("blows up — the continuous-time power of two choices the paper")
	fmt.Println("conjectures carries over from its balls-into-bins analysis.")
}
