// Quickstart: simulate the paper's two strategies on the same network and
// print the trade-off headline — Strategy II trades a little communication
// cost for an exponentially better maximum load.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	// A 45×45 torus (n = 2025 servers), 500-file library, 10 slots per
	// cache, uniform popularity — the Fig. 5 world.
	base := repro.Config{Side: 45, K: 500, M: 10, Seed: 1}

	nearest := base
	nearest.Strategy = repro.StrategySpec{Kind: repro.Nearest}

	twoChoices := base
	twoChoices.Strategy = repro.StrategySpec{Kind: repro.TwoChoices, Radius: 10}

	const trials = 60
	aggN, err := repro.Run(nearest, trials, 0)
	if err != nil {
		log.Fatal(err)
	}
	aggT, err := repro.Run(twoChoices, trials, 0)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("network: n=%d servers, K=%d files, M=%d slots, %d trials\n\n",
		base.N(), base.K, base.M, trials)
	fmt.Printf("%-28s  %-18s  %s\n", "strategy", "max load", "comm cost (hops)")
	fmt.Printf("%-28s  %-18s  %s\n", "Strategy I (nearest)", aggN.MaxLoad.String(), aggN.MeanCost.String())
	fmt.Printf("%-28s  %-18s  %s\n", "Strategy II (2 choices, r=10)", aggT.MaxLoad.String(), aggT.MeanCost.String())
	fmt.Printf("\nStrategy II cuts the maximum load by %.1fx while paying %.1f extra hops per request.\n",
		aggN.MaxLoad.Mean()/aggT.MaxLoad.Mean(), aggT.MeanCost.Mean()-aggN.MeanCost.Mean())
}
