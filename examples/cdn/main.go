// CDN scenario: a regional content-delivery deployment with a Zipf video
// catalog (the workload the paper's introduction motivates). The example
// composes the low-level public API directly — topology, placement,
// strategy, per-request loop — and reports the load distribution a
// capacity planner would look at, for three dispatch policies.
package main

import (
	"fmt"
	"sort"

	"repro"
)

func main() {
	const (
		side  = 40   // 1600 edge caches in a metro torus
		k     = 5000 // video catalog
		m     = 50   // videos pinned per cache
		gamma = 0.9  // YouTube-like popularity skew
	)
	g := repro.NewGrid(side, repro.Torus)
	pop := repro.NewZipf(k, gamma)
	src := repro.RandomSource(7)
	placement := repro.Place(g.N(), m, pop, repro.WithReplacement, src.Stream(0))

	fmt.Printf("CDN: %d caches, %d videos, %d slots each, Zipf(%.1f)\n", g.N(), k, m, gamma)
	fmt.Printf("catalog coverage: %d/%d videos have at least one replica\n\n",
		len(placement.CachedFiles()), k)

	policies := []struct {
		name  string
		strat repro.Strategy
	}{
		{"nearest replica", repro.NewNearestReplica(g, placement)},
		{"2 choices within 8 hops", repro.NewTwoChoice(g, placement,
			repro.TwoChoiceConfig{Radius: 8})},
		{"2 choices unbounded", repro.NewTwoChoice(g, placement,
			repro.TwoChoiceConfig{Radius: repro.RadiusUnbounded})},
	}
	for _, pol := range policies {
		loads := repro.NewLoads(g.N())
		r := src.Split(uint64(len(pol.name))).Stream(1)
		var hops float64
		misses := 0
		for i := 0; i < g.N(); i++ { // one request per cache on average
			req := repro.Request{
				Origin: int32(r.IntN(g.N())),
				File:   int32(pop.Sample(r)),
			}
			a := pol.strat.Assign(req, loads, r)
			loads.Add(int(a.Server))
			hops += float64(a.Hops)
			if a.Backhaul {
				misses++
			}
		}
		hist := loads.Histogram()
		fmt.Printf("policy: %s\n", pol.name)
		fmt.Printf("  max load %d, mean cost %.2f hops, backhaul %d/%d\n",
			loads.Max(), hops/float64(g.N()), misses, g.N())
		fmt.Printf("  load histogram (load:caches): %s\n\n", renderHist(hist))
	}
}

// renderHist compacts a load histogram into "load:count" pairs.
func renderHist(h []int) string {
	type kv struct{ load, count int }
	var rows []kv
	for load, count := range h {
		if count > 0 {
			rows = append(rows, kv{load, count})
		}
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].load < rows[j].load })
	s := ""
	for i, r := range rows {
		if i > 0 {
			s += " "
		}
		s += fmt.Sprintf("%d:%d", r.load, r.count)
	}
	return s
}
