// Package repro is the public facade of the cache-network load-balancing
// library reproducing "Proximity-Aware Balanced Allocations in Cache
// Networks" (Pourmiri, Jafari Siavoshani, Shariatpanahi; IPDPS 2017).
//
// The library simulates a torus of n caching servers, each holding M of K
// files placed proportionally to popularity, and measures two request
// assignment strategies:
//
//   - Strategy I (nearest replica): minimum communication cost,
//     maximum load Θ(log n);
//   - Strategy II (proximity-aware two choices): maximum load
//     Θ(log log n) at communication cost Θ(r) whenever
//     α + 2β ≥ 1 + 2·log log n / log n for M = n^α, r = n^β (Theorem 4).
//
// Quick start:
//
//	cfg := repro.Config{Side: 45, K: 500, M: 10,
//	    Strategy: repro.StrategySpec{Kind: repro.TwoChoices, Radius: 8}}
//	agg, err := repro.Run(cfg, 100, 0)
//	fmt.Println(agg) // max load and communication cost with 95% CIs
//
// The full experiment suite reproducing every figure and table of the
// paper lives behind repro.Experiment:
//
//	table, err := repro.Experiment("fig5", repro.ExpOptions{})
//	table.WriteCSV(os.Stdout)
//
// Lower-level building blocks (topology, placement, Voronoi tessellation,
// configuration graph, classic balls-into-bins processes, the supermarket
// queueing model) are exposed through type aliases below so downstream
// code can compose them directly.
package repro

import (
	"math/rand/v2"

	"repro/internal/ballsbins"
	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/experiments"
	"repro/internal/grid"
	"repro/internal/queueing"
	"repro/internal/replication"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/workload"
	"repro/internal/xrand"
)

// Topology and lattice types.
type (
	// Grid is the √n×√n lattice the cache network lives on.
	Grid = grid.Grid
	// Topology selects torus (paper default) or bounded grid.
	Topology = grid.Topology
)

// Topology constants.
const (
	// Torus wraps both dimensions (no boundary effects, Remark 1).
	Torus = grid.Torus
	// Bounded is the plain grid with boundary.
	Bounded = grid.Bounded
)

// NewGrid returns an L×L lattice. See grid.New.
func NewGrid(side int, topo Topology) *Grid { return grid.New(side, topo) }

// Popularity profiles.
type (
	// Popularity is a probability distribution over the file library.
	Popularity = dist.Popularity
	// Uniform is the equal-popularity profile.
	Uniform = dist.Uniform
	// Zipf is the rank-skewed profile p_i ∝ 1/i^γ.
	Zipf = dist.Zipf
)

// NewUniform returns the Uniform profile over k files.
func NewUniform(k int) Uniform { return dist.NewUniform(k) }

// NewZipf returns the Zipf(γ) profile over k files.
func NewZipf(k int, gamma float64) *Zipf { return dist.NewZipf(k, gamma) }

// Cache placement.
type (
	// Placement is an immutable cache assignment (node → files plus the
	// inverted replica index).
	Placement = cache.Placement
	// PlacementMode selects with- or without-replacement sampling.
	PlacementMode = cache.Mode
)

// Placement mode constants.
const (
	// WithReplacement matches the paper's proportional placement.
	WithReplacement = cache.WithReplacement
	// WithoutReplacement is the distinct-files ablation variant.
	WithoutReplacement = cache.WithoutReplacement
)

// Place draws a cache placement: n nodes, m slots each, files sampled from
// pop. See cache.Place.
func Place(n, m int, pop Popularity, mode PlacementMode, r *rand.Rand) *Placement {
	return cache.Place(n, m, pop, mode, r)
}

// ReplicationPolicy transforms popularity into the placement profile.
type ReplicationPolicy = replication.Policy

// Replication policy constants for Config.PlacementPolicy.
const (
	// Proportional caches ∝ popularity (paper default; load-optimal).
	Proportional = replication.Proportional
	// SquareRootPlace caches ∝ √popularity (search-optimal classic).
	SquareRootPlace = replication.SquareRoot
	// UniformPlace ignores popularity.
	UniformPlace = replication.UniformPlace
	// CappedPlace caps any single file's placement mass.
	CappedPlace = replication.Capped
)

// Strategies (the paper's contribution).
type (
	// Request is one content demand (origin node, file).
	Request = core.Request
	// Assignment is a served request (server, hops, miss flags).
	Assignment = core.Assignment
	// Strategy maps requests to servers given current loads.
	Strategy = core.Strategy
	// NearestReplica is Strategy I.
	NearestReplica = core.NearestReplica
	// TwoChoice is Strategy II and its d-choice generalization.
	TwoChoice = core.TwoChoice
	// TwoChoiceConfig parameterizes Strategy II.
	TwoChoiceConfig = core.TwoChoiceConfig
	// Loads tracks per-server load during an allocation.
	Loads = ballsbins.Loads
)

// RadiusUnbounded selects r = ∞ for choice-based strategies.
const RadiusUnbounded = core.RadiusUnbounded

// NewNearestReplica builds Strategy I over a world.
func NewNearestReplica(g *Grid, p *Placement) *NearestReplica {
	return core.NewNearestReplica(g, p)
}

// NewTwoChoice builds Strategy II over a world.
func NewTwoChoice(g *Grid, p *Placement, cfg TwoChoiceConfig) *TwoChoice {
	return core.NewTwoChoice(g, p, cfg)
}

// NewLoads returns an all-zero load vector over n servers.
func NewLoads(n int) *Loads { return ballsbins.NewLoads(n) }

// Simulation engine.
type (
	// Config declares one simulated world (topology, placement,
	// strategy, request process).
	Config = sim.Config
	// StrategySpec declares the assignment strategy inside a Config.
	StrategySpec = sim.StrategySpec
	// PopSpec declares the popularity profile inside a Config.
	PopSpec = sim.PopSpec
	// MissPolicy resolves unservable requests.
	MissPolicy = sim.MissPolicy
	// Result holds one trial's metrics.
	Result = sim.Result
	// Aggregate holds experiment-level statistics over trials.
	Aggregate = sim.Aggregate
	// Summary is a streaming mean/variance/CI accumulator.
	Summary = stats.Summary
	// Accumulator streams observations into running max, Welford moments
	// and a bounded histogram — the constant-memory metric building block
	// of the engine's streaming mode.
	Accumulator = stats.Accumulator
	// MetricsMode selects per-trial instrumentation (scalar, links,
	// streaming).
	MetricsMode = sim.MetricsMode
	// Streams selects the request-phase RNG discipline (interleaved or
	// split).
	Streams = sim.Streams
	// IndexMode selects the candidate-enumeration discipline of the
	// radius-bounded strategies (none or tiles).
	IndexMode = sim.IndexMode
	// ChurnMode selects the mid-trial placement-mutation discipline of
	// the §VI dynamic regime (none, replicas or drift).
	ChurnMode = sim.ChurnMode
	// ShardMode selects the intra-trial sharded engine's load-visibility
	// discipline (deterministic or racy) when Config.Workers > 0.
	ShardMode = sim.ShardMode
	// FaultsMode selects the node fault-injection discipline (none,
	// crash or regional): servers crash and recover mid-trial, with the
	// strategies masking dead nodes through a graceful-degradation
	// ladder.
	FaultsMode = sim.FaultsMode
	// HeteroMode selects the node-heterogeneity regime (none, capacity or
	// arrival): per-node cache sizes M_u and service capacities C_u drawn
	// from Config.Profile, with the arrival variant growing the network
	// mid-trial as vacant nodes join.
	HeteroMode = sim.HeteroMode
	// CacheProfile selects the per-node (M_u, C_u) distribution of the
	// heterogeneous regimes (uniform, two-tier or power-law).
	CacheProfile = sim.CacheProfile
	// AtomicLoads is the lock-free shared load vector of the racy
	// sharded mode (atomic adds, unsynchronized stale reads).
	AtomicLoads = ballsbins.AtomicLoads
	// WeightedLoads is the capacity-normalized load view of the
	// heterogeneous regimes: strategies compare load/C_u through it while
	// writes stay on the raw vector.
	WeightedLoads = ballsbins.WeightedLoads
	// SpaceSaving is the heavy-hitter sketch behind the streaming mode's
	// approximate max-link-load (Result.LinkMaxApprox).
	SpaceSaving = stats.SpaceSaving
	// Drifter is the shot-noise popularity-activity core driving the
	// drift-coupled churn schedule and the workload streams.
	Drifter = workload.Drifter
)

// NewAccumulator returns a streaming accumulator whose histogram resolves
// values in [0, bound].
func NewAccumulator(bound int) *Accumulator { return stats.NewAccumulator(bound) }

// Metrics mode constants for Config.Metrics.
const (
	// MetricsScalar reports only the Definition 1 scalars (default).
	MetricsScalar = sim.MetricsScalar
	// MetricsLinks materializes per-link loads and reports congestion.
	MetricsLinks = sim.MetricsLinks
	// MetricsStreaming reports hop moments and load quantiles through
	// constant-memory accumulators (flat memory at any world size).
	MetricsStreaming = sim.MetricsStreaming
)

// Request-stream discipline constants for Config.Streams.
const (
	// StreamsInterleaved is the legacy bit-compatible discipline (default).
	StreamsInterleaved = sim.StreamsInterleaved
	// StreamsSplit batches request generation over dedicated streams.
	StreamsSplit = sim.StreamsSplit
)

// Index discipline constants for Config.Index.
const (
	// IndexNone is the PR 3 rejection/exact-filter ladder (default,
	// golden-pinned).
	IndexNone = sim.IndexNone
	// IndexTiles enumerates S_j ∩ B_r(u) through the tile-bucketed
	// spatial replica index — the sub-second wide-world discipline.
	IndexTiles = sim.IndexTiles
)

// Shard discipline constants for Config.Shard (with Config.Workers > 0).
const (
	// ShardDeterministic freezes chunk-barrier load snapshots; results
	// are bit-identical across every worker count (default,
	// golden-pinned by the parallel matrix).
	ShardDeterministic = sim.ShardDeterministic
	// ShardRacy shares one atomic load vector among workers — stale
	// unsynchronized reads, scheduling-dependent results.
	ShardRacy = sim.ShardRacy
)

// Churn discipline constants for Config.Churn.
const (
	// ChurnNone freezes the placement for the whole trial (default,
	// golden-pinned).
	ChurnNone = sim.ChurnNone
	// ChurnReplicas migrates uniformly random cached replicas mid-trial.
	ChurnReplicas = sim.ChurnReplicas
	// ChurnDrift couples migrations to a shot-noise popularity drifter.
	ChurnDrift = sim.ChurnDrift
)

// Fault discipline constants for Config.Faults (with Config.FaultRate
// and Config.RecoverRate expected events per request).
const (
	// FaultsNone keeps every node live for the whole trial (default,
	// golden-pinned).
	FaultsNone = sim.FaultsNone
	// FaultsCrash kills uniform live nodes and revives uniform dead ones
	// (MTTR-style re-admission).
	FaultsCrash = sim.FaultsCrash
	// FaultsRegional kills and revives whole tile-aligned regions —
	// correlated failure domains.
	FaultsRegional = sim.FaultsRegional
)

// Heterogeneity regime constants for Config.Hetero.
const (
	// HeteroNone is the homogeneous paper model (default, golden-pinned).
	HeteroNone = sim.HeteroNone
	// HeteroCapacity draws per-node cache sizes and service capacities
	// from Config.Profile; two-choices compares load/C_u.
	HeteroCapacity = sim.HeteroCapacity
	// HeteroArrival is HeteroCapacity plus mid-trial node arrivals at
	// Config.ArrivalRate expected joins per request.
	HeteroArrival = sim.HeteroArrival
)

// Cache-profile constants for Config.Profile.
const (
	// ProfileUniform is the degenerate profile M_u = M, C_u = 1
	// (bit-identical to the homogeneous engine).
	ProfileUniform = sim.ProfileUniform
	// ProfileTwoTier makes ~25% of nodes big (2M slots, double rate).
	ProfileTwoTier = sim.ProfileTwoTier
	// ProfilePowerLaw draws Pareto-tailed cache sizes in [1, 8M].
	ProfilePowerLaw = sim.ProfilePowerLaw
)

// Link-sketch bounds for Result.LinkMaxApprox (MetricsStreaming): the
// sketch holds LinkSketchCap directed-link counters and runs on worlds
// with at most LinkSketchMaxN nodes; larger worlds report 0. See
// sim.LinkSketchMaxN for why the gate exists.
const (
	// LinkSketchCap is the space-saving sketch capacity.
	LinkSketchCap = sim.LinkSketchCap
	// LinkSketchMaxN is the largest node count the sketch reports on.
	LinkSketchMaxN = sim.LinkSketchMaxN
)

// NewDrifter returns a shot-noise activity core over k files. See
// workload.NewDrifter.
func NewDrifter(k int, boost, birthRate, lifespan float64) *Drifter {
	return workload.NewDrifter(k, boost, birthRate, lifespan)
}

// ParseChurn converts a CLI name into a ChurnMode.
func ParseChurn(s string) (ChurnMode, error) { return sim.ParseChurn(s) }

// ParseFaults converts a CLI name into a FaultsMode.
func ParseFaults(s string) (FaultsMode, error) { return sim.ParseFaults(s) }

// ParseMiss converts a CLI name into a MissPolicy.
func ParseMiss(s string) (MissPolicy, error) { return sim.ParseMiss(s) }

// ParseShard converts a CLI name into a ShardMode.
func ParseShard(s string) (ShardMode, error) { return sim.ParseShard(s) }

// ParseHetero converts a CLI name into a HeteroMode.
func ParseHetero(s string) (HeteroMode, error) { return sim.ParseHetero(s) }

// ParseProfile converts a CLI name into a CacheProfile.
func ParseProfile(s string) (CacheProfile, error) { return sim.ParseProfile(s) }

// NewWeightedLoads returns a capacity-weighted view of inner under mult
// (per-bin positive multipliers). See ballsbins.NewWeightedLoads.
func NewWeightedLoads(inner interface{ Load(i int) int }, mult []int32) *WeightedLoads {
	return ballsbins.NewWeightedLoads(inner, mult)
}

// NewAtomicLoads returns an all-zero atomic load vector over n bins.
func NewAtomicLoads(n int) *AtomicLoads { return ballsbins.NewAtomicLoads(n) }

// NewSpaceSaving returns a heavy-hitter sketch monitoring up to k keys.
func NewSpaceSaving(k int) *SpaceSaving { return stats.NewSpaceSaving(k) }

// ParseIndex converts a CLI name into an IndexMode.
func ParseIndex(s string) (IndexMode, error) { return sim.ParseIndex(s) }

// ParseMetricsMode converts a CLI name into a MetricsMode.
func ParseMetricsMode(s string) (MetricsMode, error) { return sim.ParseMetricsMode(s) }

// ParseStreams converts a CLI name into a Streams discipline.
func ParseStreams(s string) (Streams, error) { return sim.ParseStreams(s) }

// Strategy kind constants for StrategySpec.Kind.
const (
	// Nearest is Strategy I.
	Nearest = sim.Nearest
	// TwoChoices is Strategy II.
	TwoChoices = sim.TwoChoices
	// OneChoiceRandom is the load-blind random-replica baseline.
	OneChoiceRandom = sim.OneChoiceRandom
	// Oracle is the full-information least-loaded baseline.
	Oracle = sim.Oracle
)

// Popularity kind constants for PopSpec.Kind.
const (
	// PopUniform selects the Uniform profile.
	PopUniform = sim.PopUniform
	// PopZipf selects the Zipf profile (set PopSpec.Gamma).
	PopZipf = sim.PopZipf
)

// Miss policy constants.
const (
	// MissResample conditions requests on cached files (paper default).
	MissResample = sim.MissResample
	// MissEscalate serves uncached files via backhaul, widens radii.
	MissEscalate = sim.MissEscalate
	// MissOrigin serves every miss at the origin.
	MissOrigin = sim.MissOrigin
)

// Compiled simulation worlds (the engine's hot path).
type (
	// World is a compiled, trial-invariant simulation configuration:
	// grid, popularity profile, placement profile and sampling templates
	// built once and shared by every trial. Immutable and safe for
	// concurrent use.
	World = sim.World
	// Runner executes trials of one World through reusable per-worker
	// scratch. Not safe for concurrent use; create one per worker.
	Runner = sim.Runner
	// Snapshot is one era of served placement state — the mutable trial
	// state extracted from the Runner so the daemon (cmd/cachesimd,
	// internal/serve) can evolve and publish it copy-on-write. Built by
	// World.Snapshot.
	Snapshot = sim.Snapshot
	// SnapshotInfo is the placement-era diagnostic stamp shared by batch
	// (cachesim -v) and served (/metrics) modes.
	SnapshotInfo = sim.SnapshotInfo
)

// Compile validates cfg and builds its trial-invariant state once. Use
// World.RunTrial / World.NewRunner to execute trials against it.
func Compile(cfg Config) (*World, error) { return sim.Compile(cfg) }

// RunTrial executes one deterministic simulation trial.
func RunTrial(cfg Config, trial uint64) (Result, error) { return sim.RunTrial(cfg, trial) }

// Run executes trials in parallel and aggregates (workers ≤ 0 uses
// GOMAXPROCS); results are independent of the worker count.
func Run(cfg Config, trials, workers int) (Aggregate, error) { return sim.Run(cfg, trials, workers) }

// RunSeries executes Run over a slice of configs (one experiment curve),
// fanning configurations and trials out across one shared worker pool.
// Results are in input order, bit-identical to per-point Run.
func RunSeries(cfgs []Config, trials, workers int) ([]Aggregate, error) {
	return sim.RunSeries(cfgs, trials, workers)
}

// Queueing extension (§VI conjecture).
type (
	// QueueConfig declares a supermarket-model run.
	QueueConfig = queueing.Config
	// QueueResult holds its steady-state observations.
	QueueResult = queueing.Result
)

// RunQueue executes the continuous-time supermarket simulation.
func RunQueue(cfg QueueConfig) (QueueResult, error) { return queueing.Run(cfg) }

// Experiments (paper figures and tables).
type (
	// ExpOptions configures an experiment run (preset, trials, seed).
	ExpOptions = experiments.Options
	// ExpTable is one reproduced figure or table.
	ExpTable = experiments.Table
)

// Experiment presets.
const (
	// PresetQuick is CI-sized (minutes).
	PresetQuick = experiments.Quick
	// PresetPaper approaches the paper's replica counts (hours).
	PresetPaper = experiments.Paper
)

// Experiment runs the reproduction registered under id ("fig1".."fig5",
// "zipf-cost", "thm12", "thm4", "lemma1", "confgraph", "example3",
// "supermarket", "uniform-cost-law").
func Experiment(id string, opt ExpOptions) (*ExpTable, error) {
	r, err := experiments.Lookup(id)
	if err != nil {
		return nil, err
	}
	return r(opt)
}

// ExperimentIDs lists every registered experiment.
func ExperimentIDs() []string { return experiments.IDs() }

// RandomSource returns a deterministic splittable random source for use
// with the lower-level builders (cache.Place etc.).
func RandomSource(seed uint64) xrand.Source { return xrand.NewSource(seed) }
